// Operation-span analysis (paper §IV, Definition 4).
//
// The opSpan of an operation generalizes the ASAP/ALAP mobility interval to
// arbitrary CFGs: span(o) is the topologically ordered set of CFG edges on
// which o may legally be scheduled.
//
//   early(o) = the first edge forward-reachable from the early edge of
//              every direct data predecessor of o;
//   late(o)  = the last edge from which the late edge of every direct data
//              successor of o is reachable.
//
// Legal-placement rules (reproduce the paper's Fig. 5 spans exactly):
//  * fixed I/O operations: span = {birth};
//  * upward code motion (speculation above the birth edge) is allowed only
//    onto edges that *dominate* the birth edge -- the op must still execute
//    on every path that reaches its original location;
//  * downward motion never crosses a control join: an op stays inside the
//    branch it was born in (join phis merge values, operations do not
//    migrate past them);
//  * join-phi muxes cannot move above their birth edge at all;
//  * producers feeding a fixed write must finish at least one state before
//    the write executes (I/O inputs are registered).
//
// The analysis also honors scheduling pins: once sched(o) is set, the span
// collapses to that single edge and downstream spans tighten accordingly.
#pragma once

#include <optional>
#include <vector>

#include "ir/cfg.h"
#include "ir/dfg.h"
#include "ir/latency.h"

namespace thls {

struct OpSpan {
  CfgEdgeId early;
  CfgEdgeId late;
  /// All legal edges, sorted by CFG edge topological order.
  std::vector<CfgEdgeId> edges;
};

class OpSpanAnalysis {
 public:
  /// `pins` optionally fixes a subset of ops to specific edges (used by the
  /// scheduler to re-run span analysis as operations get placed).
  /// `minEdgeTopoIdx` optionally bounds each op's earliest legal edge from
  /// below (by CFG edge topological index); the scheduler uses it to record
  /// that a deferred op can no longer take edges it has already passed.
  OpSpanAnalysis(const Cfg& cfg, const Dfg& dfg, const LatencyTable& lat,
                 const std::vector<std::optional<CfgEdgeId>>* pins = nullptr,
                 const std::vector<std::size_t>* minEdgeTopoIdx = nullptr);

  const OpSpan& span(OpId op) const { return spans_[op.index()]; }
  CfgEdgeId early(OpId op) const { return spans_[op.index()].early; }
  CfgEdgeId late(OpId op) const { return spans_[op.index()].late; }

  /// True iff edge `e` is a legal schedule location for `op`.
  bool contains(OpId op, CfgEdgeId e) const;

  /// Number of legal edges (mobility) of `op`.
  std::size_t mobility(OpId op) const { return spans_[op.index()].edges.size(); }

 private:
  /// Candidate edges for op placement before data-dependence constraints.
  std::vector<bool> candidateEdges(const Operation& op) const;

  const Cfg& cfg_;
  const Dfg& dfg_;
  const LatencyTable& lat_;
  std::vector<OpSpan> spans_;
  /// edom_[n][e]: edge e lies on every forward path from start to node n.
  std::vector<std::vector<bool>> edom_;
};

}  // namespace thls
