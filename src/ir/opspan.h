// Operation-span analysis (paper §IV, Definition 4).
//
// The opSpan of an operation generalizes the ASAP/ALAP mobility interval to
// arbitrary CFGs: span(o) is the topologically ordered set of CFG edges on
// which o may legally be scheduled.
//
//   early(o) = the first edge forward-reachable from the early edge of
//              every direct data predecessor of o;
//   late(o)  = the last edge from which the late edge of every direct data
//              successor of o is reachable.
//
// Legal-placement rules (reproduce the paper's Fig. 5 spans exactly):
//  * fixed I/O operations: span = {birth};
//  * upward code motion (speculation above the birth edge) is allowed only
//    onto edges that *dominate* the birth edge -- the op must still execute
//    on every path that reaches its original location;
//  * downward motion never crosses a control join: an op stays inside the
//    branch it was born in (join phis merge values, operations do not
//    migrate past them);
//  * join-phi muxes cannot move above their birth edge at all;
//  * producers feeding a fixed write must finish at least one state before
//    the write executes (I/O inputs are registered).
//
// The analysis also honors scheduling pins: once sched(o) is set, the span
// collapses to that single edge and downstream spans tighten accordingly.
//
// Spans are a pure two-pass dataflow over the DFG topological order --
// early(o) depends only on the earlys of o's predecessors, late(o) only on
// the lates of o's successors and on early(o) -- so pinning or bounding an
// op invalidates only its transitive neighborhood.  update() exploits that:
// the scheduler pins a handful of ops per round and pays for the affected
// ops only, instead of reconstructing the whole analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/cfg.h"
#include "ir/dfg.h"
#include "ir/latency.h"

namespace thls {

struct OpSpan {
  CfgEdgeId early;
  CfgEdgeId late;
  /// All legal edges, sorted by CFG edge topological order.
  std::vector<CfgEdgeId> edges;
};

/// Pin/bound-independent span ingredients: edge-dominator sets and each op's
/// candidate edges (birth + legal downward motion + legal speculation).
/// Both depend only on the CFG structure and the ops' birth edges, so the
/// scheduler keeps one cache alive across all span (re)builds of a pass; it
/// self-invalidates via Cfg::structureVersion() when the relaxation engine
/// inserts a state.
class SpanCandidateCache {
 public:
  /// (Re)computes the sets when `cfg` mutated or `dfg` grew since the last
  /// refresh; a cheap version check otherwise.  Requires a finalized CFG.
  void refresh(const Cfg& cfg, const Dfg& dfg);

  bool validFor(const Cfg& cfg, const Dfg& dfg) const {
    return cfg_ == &cfg && cfgVersion_ == cfg.structureVersion() &&
           numOps_ == dfg.numOps();
  }

  /// Candidate edges (by edge index) for placing `op`, before data-dependence
  /// constraints.  Empty for free-kind and fixed ops (never consulted).
  const std::vector<bool>& candidates(OpId op) const {
    return cand_[op.index()];
  }

 private:
  const Cfg* cfg_ = nullptr;
  std::uint64_t cfgVersion_ = 0;
  std::size_t numOps_ = 0;
  std::vector<std::vector<bool>> cand_;
};

class OpSpanAnalysis {
 public:
  /// `pins` optionally fixes a subset of ops to specific edges (used by the
  /// scheduler to re-run span analysis as operations get placed).
  /// `minEdgeTopoIdx` optionally bounds each op's earliest legal edge from
  /// below (by CFG edge topological index); the scheduler uses it to record
  /// that a deferred op can no longer take edges it has already passed.
  /// `cache` optionally shares candidate sets across analyses of one CFG;
  /// when null a private cache is built.
  OpSpanAnalysis(const Cfg& cfg, const Dfg& dfg, const LatencyTable& lat,
                 const std::vector<std::optional<CfgEdgeId>>* pins = nullptr,
                 const std::vector<std::size_t>* minEdgeTopoIdx = nullptr,
                 SpanCandidateCache* cache = nullptr);

  const OpSpan& span(OpId op) const { return spans_[op.index()]; }
  CfgEdgeId early(OpId op) const { return spans_[op.index()].early; }
  CfgEdgeId late(OpId op) const { return spans_[op.index()].late; }

  /// True iff edge `e` is a legal schedule location for `op`.
  bool contains(OpId op, CfgEdgeId e) const {
    return inSpan_[op.index()][e.index()];
  }

  /// Number of legal edges (mobility) of `op`.
  std::size_t mobility(OpId op) const { return spans_[op.index()].edges.size(); }

  /// Incrementally re-establishes the analysis after the pin or earliest
  /// bound of `dirtyOps` changed (through the vectors given at construction).
  /// Pins and bound bumps only ever tighten spans, so exactly the dirty ops'
  /// transitive dependents (forward) and dependees (backward) are revisited;
  /// the result is bit-for-bit identical to a from-scratch construction with
  /// the same pins/bounds.  Returns the number of ops recomputed.
  std::size_t update(const std::vector<OpId>& dirtyOps);

 private:
  void rebuildAll();
  /// Recomputes the span head of `id`; true when it changed.
  bool recomputeEarly(OpId id);
  /// Recomputes the span tail of `id`; true when it changed.
  bool recomputeLate(OpId id);
  /// Materializes spans_[id].edges and the inSpan_ bitset row.
  void rebuildEdges(OpId id);
  std::optional<CfgEdgeId> pinOf(OpId id) const;

  const Cfg& cfg_;
  const Dfg& dfg_;
  const LatencyTable& lat_;
  const std::vector<std::optional<CfgEdgeId>>* pins_;
  const std::vector<std::size_t>* minEdgeTopoIdx_;
  SpanCandidateCache ownedCache_;  ///< used when no shared cache is given
  SpanCandidateCache* cache_;
  std::vector<OpSpan> spans_;
  /// inSpan_[op][e]: bitset mirror of spans_[op].edges for O(1) contains().
  std::vector<std::vector<bool>> inSpan_;
  /// DFG topological order and each op's position in it (update() sweeps).
  std::vector<OpId> topo_;
  std::vector<std::size_t> topoPos_;
  /// Timing adjacency, materialized once (timingPreds/Succs allocate).
  std::vector<std::vector<OpId>> preds_;
  std::vector<std::vector<OpId>> succs_;
};

}  // namespace thls
