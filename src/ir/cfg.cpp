#include "ir/cfg.h"

#include <algorithm>

#include "support/topo.h"

namespace thls {

const char* toString(CfgNodeKind kind) {
  switch (kind) {
    case CfgNodeKind::kStart:
      return "start";
    case CfgNodeKind::kState:
      return "state";
    case CfgNodeKind::kFork:
      return "fork";
    case CfgNodeKind::kJoin:
      return "join";
    case CfgNodeKind::kBasic:
      return "basic";
  }
  return "?";
}

Cfg::Cfg() { start_ = addNode(CfgNodeKind::kStart, "start"); }

CfgNodeId Cfg::addNode(CfgNodeKind kind, std::string name) {
  CfgNodeId id(static_cast<std::int32_t>(nodes_.size()));
  CfgNode n;
  n.kind = kind;
  n.name = name.empty() ? strCat(toString(kind), id.value()) : std::move(name);
  nodes_.push_back(std::move(n));
  finalized_ = false;
  ++version_;
  return id;
}

CfgEdgeId Cfg::addEdge(CfgNodeId from, CfgNodeId to, std::string name) {
  THLS_ASSERT(from.valid() && to.valid(), "edge endpoints must be valid");
  CfgEdgeId id(static_cast<std::int32_t>(edges_.size()));
  CfgEdge e;
  e.from = from;
  e.to = to;
  e.name = name.empty() ? strCat("e", id.value() + 1) : std::move(name);
  edges_.push_back(std::move(e));
  nodes_[from.index()].out.push_back(id);
  nodes_[to.index()].in.push_back(id);
  finalized_ = false;
  ++version_;
  return id;
}

std::size_t Cfg::numStates() const {
  std::size_t n = 0;
  for (const CfgNode& node : nodes_) {
    if (node.kind == CfgNodeKind::kState) ++n;
  }
  return n;
}

void Cfg::classifyBackEdges() {
  // Iterative DFS from the start node; an edge to a node currently on the
  // DFS stack is a back edge (Muchnick [13], depth-first classification).
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(nodes_.size(), Color::kWhite);
  for (CfgEdge& e : edges_) e.backward = false;

  struct Frame {
    CfgNodeId node;
    std::size_t nextOut = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({start_});
  color[start_.index()] = Color::kGray;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const CfgNode& n = nodes_[f.node.index()];
    if (f.nextOut >= n.out.size()) {
      color[f.node.index()] = Color::kBlack;
      stack.pop_back();
      continue;
    }
    CfgEdgeId eid = n.out[f.nextOut++];
    CfgEdge& e = edges_[eid.index()];
    Color c = color[e.to.index()];
    if (c == Color::kGray) {
      e.backward = true;
    } else if (c == Color::kWhite) {
      color[e.to.index()] = Color::kGray;
      stack.push_back({e.to});
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Fully isolated nodes are tolerated: the builder's retargetEdge leaves
    // orphan placeholders behind by design.
    if (nodes_[i].in.empty() && nodes_[i].out.empty()) continue;
    THLS_REQUIRE(color[i] == Color::kBlack,
                 strCat("CFG node '", nodes_[i].name,
                        "' is unreachable from the start node"));
  }
}

void Cfg::computeTopoOrders() {
  auto forEachSucc = [&](std::size_t u, const std::function<void(std::size_t)>& cb) {
    for (CfgEdgeId eid : nodes_[u].out) {
      const CfgEdge& e = edges_[eid.index()];
      if (!e.backward) cb(e.to.index());
    }
  };
  auto order = topologicalOrder(nodes_.size(), forEachSucc);
  THLS_REQUIRE(order.has_value(),
               "CFG forward subgraph is cyclic; loops must close through "
               "back edges (check node reachability from the start node)");
  // Kahn's algorithm visits nodes in an arbitrary valid order; stabilize by
  // re-sorting levels so results are deterministic across platforms.
  topoNodes_.clear();
  nodeTopoIndex_.assign(nodes_.size(), 0);
  for (std::size_t pos = 0; pos < order->size(); ++pos) {
    CfgNodeId id(static_cast<std::int32_t>((*order)[pos]));
    topoNodes_.push_back(id);
    nodeTopoIndex_[(*order)[pos]] = pos;
  }

  // Edge order: sorted by (topo(from), topo(to), id).  Back edges go last.
  topoEdges_.clear();
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    topoEdges_.push_back(CfgEdgeId(static_cast<std::int32_t>(i)));
  }
  std::sort(topoEdges_.begin(), topoEdges_.end(),
            [&](CfgEdgeId a, CfgEdgeId b) {
              const CfgEdge& ea = edges_[a.index()];
              const CfgEdge& eb = edges_[b.index()];
              auto keyA = std::make_tuple(ea.backward,
                                          nodeTopoIndex_[ea.from.index()],
                                          nodeTopoIndex_[ea.to.index()], a.value());
              auto keyB = std::make_tuple(eb.backward,
                                          nodeTopoIndex_[eb.from.index()],
                                          nodeTopoIndex_[eb.to.index()], b.value());
              return keyA < keyB;
            });
  edgeTopoIndex_.assign(edges_.size(), 0);
  for (std::size_t pos = 0; pos < topoEdges_.size(); ++pos) {
    edgeTopoIndex_[topoEdges_[pos].index()] = pos;
  }
}

void Cfg::computeEdgeReachability() {
  // reach_[a][b]: edge b is forward-reachable from edge a, i.e. there is a
  // forward path (possibly empty) from a.to to b.from, or a == b.
  const std::size_t ne = edges_.size();
  // nodeReach[u][v]: forward node reachability, computed over reverse topo.
  std::vector<std::vector<bool>> nodeReach(nodes_.size(),
                                           std::vector<bool>(nodes_.size(), false));
  for (auto it = topoNodes_.rbegin(); it != topoNodes_.rend(); ++it) {
    std::size_t u = it->index();
    nodeReach[u][u] = true;
    for (CfgEdgeId eid : nodes_[u].out) {
      const CfgEdge& e = edges_[eid.index()];
      if (e.backward) continue;
      std::size_t v = e.to.index();
      for (std::size_t w = 0; w < nodes_.size(); ++w) {
        if (nodeReach[v][w]) nodeReach[u][w] = true;
      }
    }
  }
  reach_.assign(ne, std::vector<bool>(ne, false));
  for (std::size_t a = 0; a < ne; ++a) {
    const CfgEdge& ea = edges_[a];
    reach_[a][a] = true;
    if (ea.backward) continue;
    for (std::size_t b = 0; b < ne; ++b) {
      if (a == b || edges_[b].backward) continue;
      if (nodeReach[ea.to.index()][edges_[b].from.index()]) reach_[a][b] = true;
    }
  }
}

void Cfg::finalize() {
  THLS_REQUIRE(!edges_.empty(), "CFG has no edges");
  classifyBackEdges();
  computeTopoOrders();
  computeEdgeReachability();
  finalized_ = true;
}

std::size_t Cfg::topoIndexOfNode(CfgNodeId id) const {
  THLS_ASSERT(finalized_, "CFG not finalized");
  return nodeTopoIndex_[id.index()];
}

std::size_t Cfg::topoIndexOfEdge(CfgEdgeId id) const {
  THLS_ASSERT(finalized_, "CFG not finalized");
  return edgeTopoIndex_[id.index()];
}

std::vector<CfgEdgeId> Cfg::forwardOut(CfgNodeId id) const {
  std::vector<CfgEdgeId> result;
  for (CfgEdgeId eid : node(id).out) {
    if (!edge(eid).backward) result.push_back(eid);
  }
  return result;
}

std::vector<CfgEdgeId> Cfg::forwardIn(CfgNodeId id) const {
  std::vector<CfgEdgeId> result;
  for (CfgEdgeId eid : node(id).in) {
    if (!edge(eid).backward) result.push_back(eid);
  }
  return result;
}

bool Cfg::edgeReaches(CfgEdgeId from, CfgEdgeId to) const {
  THLS_ASSERT(finalized_, "CFG not finalized");
  return reach_[from.index()][to.index()];
}

void Cfg::retargetEdge(CfgEdgeId eid, CfgNodeId newTo) {
  CfgEdge& e = edges_[eid.index()];
  CfgNode& oldTo = nodes_[e.to.index()];
  oldTo.in.erase(std::remove(oldTo.in.begin(), oldTo.in.end(), eid),
                 oldTo.in.end());
  e.to = newTo;
  nodes_[newTo.index()].in.push_back(eid);
  finalized_ = false;
  ++version_;
}

void Cfg::promote(CfgNodeId id, CfgNodeKind kind) {
  CfgNode& n = nodes_[id.index()];
  THLS_REQUIRE(kind != CfgNodeKind::kStart, "cannot create a second start node");
  THLS_REQUIRE(n.kind == CfgNodeKind::kBasic,
               strCat("only pass-through nodes can be promoted, '", n.name,
                      "' is a ", toString(n.kind)));
  n.kind = kind;
  finalized_ = false;
  ++version_;
}

void Cfg::promoteToState(CfgNodeId id) {
  CfgNode& n = nodes_[id.index()];
  THLS_REQUIRE(n.kind == CfgNodeKind::kBasic,
               strCat("only pass-through nodes can become states, '", n.name,
                      "' is a ", toString(n.kind)));
  n.kind = CfgNodeKind::kState;
  finalized_ = false;
  ++version_;
}

CfgEdgeId Cfg::insertStateOnEdge(CfgEdgeId eid) {
  CfgEdge& e = edges_[eid.index()];
  THLS_REQUIRE(!e.backward, "cannot insert a state on a back edge");
  CfgNodeId mid = addNode(CfgNodeKind::kState,
                          strCat("s_relax", nodes_.size()));
  CfgNodeId oldTo = edges_[eid.index()].to;
  // Retarget the original edge to the new state node.
  CfgNode& toNode = nodes_[oldTo.index()];
  toNode.in.erase(std::remove(toNode.in.begin(), toNode.in.end(), eid),
                  toNode.in.end());
  edges_[eid.index()].to = mid;
  nodes_[mid.index()].in.push_back(eid);
  CfgEdgeId tail = addEdge(mid, oldTo, strCat(edges_[eid.index()].name, "'"));
  finalized_ = false;
  ++version_;
  return tail;
}

}  // namespace thls
