#include "ir/latency.h"

#include <algorithm>

namespace thls {

LatencyTable::LatencyTable(const Cfg& cfg)
    : cfg_(&cfg), cfgVersion_(cfg.structureVersion()) {
  THLS_ASSERT(cfg.finalized(), "LatencyTable needs a finalized CFG");
  const std::size_t nv = cfg.numNodes();
  minStates_.assign(nv, std::vector<int>(nv, kUndefined));

  // DP over the reverse forward-topological order: minStates_[v][u] counts
  // state nodes on the inclusive node path v..u.
  const auto& topo = cfg.topoNodes();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t v = it->index();
    const int selfCount = cfg.isState(CfgNodeId(static_cast<std::int32_t>(v))) ? 1 : 0;
    minStates_[v][v] = selfCount;
    for (CfgEdgeId eid : cfg.node(CfgNodeId(static_cast<std::int32_t>(v))).out) {
      const CfgEdge& e = cfg.edge(eid);
      if (e.backward) continue;
      const std::size_t w = e.to.index();
      for (std::size_t u = 0; u < nv; ++u) {
        if (minStates_[w][u] == kUndefined) continue;
        minStates_[v][u] =
            std::min(minStates_[v][u], selfCount + minStates_[w][u]);
      }
    }
  }
}

void LatencyTable::applyStateInsertion(CfgEdgeId oldEdge, CfgEdgeId newEdge) {
  const Cfg& cfg = *cfg_;
  THLS_ASSERT(cfg.finalized(),
              "applyStateInsertion needs the CFG re-finalized first");
  const CfgEdge& head = cfg.edge(oldEdge);
  const CfgEdge& tail = cfg.edge(newEdge);
  const CfgNodeId mid = head.to;
  THLS_ASSERT(mid == tail.from && cfg.isState(mid),
              "applyStateInsertion expects the edge pair of insertStateOnEdge");
  THLS_ASSERT(!head.backward && !tail.backward,
              "a split forward edge must stay forward");
  const std::size_t nvOld = minStates_.size();
  THLS_ASSERT(mid.index() == nvOld && cfg.numNodes() == nvOld + 1,
              "applyStateInsertion must run once per insertion, in order");
  const std::size_t m = mid.index();
  const std::size_t a = head.from.index();
  const std::size_t b = tail.to.index();

  for (std::vector<int>& row : minStates_) row.push_back(kUndefined);
  minStates_.emplace_back(nvOld + 1, kUndefined);

  // Row of the new state node: its only forward successor is b, and b's own
  // row cannot have crossed the split edge (b never reaches a in the forward
  // DAG), so it is still valid.
  minStates_[m][m] = 1;
  for (std::size_t u = 0; u < nvOld; ++u) {
    if (minStates_[b][u] != kUndefined) minStates_[m][u] = 1 + minStates_[b][u];
  }
  // Column of the new node: any path v..mid is a path v..a plus the
  // retargeted head edge, picking up mid's own state count.
  for (std::size_t v = 0; v < nvOld; ++v) {
    if (minStates_[v][a] != kUndefined) minStates_[v][m] = minStates_[v][a] + 1;
  }

  // A pre-existing pair (v, u) can only have changed when some v..u path
  // crossed the split edge, i.e. v reaches a and u is reachable from b.
  // Re-relax exactly those pairs over the reverse topological order; all
  // other entries (read during relaxation) are still valid.
  std::vector<bool> reachesA(nvOld + 1, false);
  std::vector<std::size_t> stack{a};
  reachesA[a] = true;
  while (!stack.empty()) {
    std::size_t v = stack.back();
    stack.pop_back();
    for (CfgEdgeId eid : cfg.node(CfgNodeId(static_cast<std::int32_t>(v))).in) {
      const CfgEdge& e = cfg.edge(eid);
      if (e.backward || reachesA[e.from.index()]) continue;
      reachesA[e.from.index()] = true;
      stack.push_back(e.from.index());
    }
  }
  std::vector<std::size_t> targets;
  std::vector<bool> fromB(nvOld + 1, false);
  stack.assign(1, b);
  fromB[b] = true;
  targets.push_back(b);
  while (!stack.empty()) {
    std::size_t u = stack.back();
    stack.pop_back();
    for (CfgEdgeId eid : cfg.node(CfgNodeId(static_cast<std::int32_t>(u))).out) {
      const CfgEdge& e = cfg.edge(eid);
      if (e.backward || fromB[e.to.index()]) continue;
      fromB[e.to.index()] = true;
      targets.push_back(e.to.index());
      stack.push_back(e.to.index());
    }
  }

  const auto& topo = cfg.topoNodes();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t v = it->index();
    if (v >= nvOld || !reachesA[v]) continue;
    const CfgNodeId vid(static_cast<std::int32_t>(v));
    const int selfCount = cfg.isState(vid) ? 1 : 0;
    for (std::size_t u : targets) {
      int best = v == u ? selfCount : kUndefined;
      for (CfgEdgeId eid : cfg.node(vid).out) {
        const CfgEdge& e = cfg.edge(eid);
        if (e.backward) continue;
        const int tailMin = minStates_[e.to.index()][u];
        if (tailMin == kUndefined) continue;
        best = std::min(best, selfCount + tailMin);
      }
      minStates_[v][u] = best;
    }
  }

  cfgVersion_ = cfg.structureVersion();
}

int LatencyTable::latency(CfgEdgeId from, CfgEdgeId to) const {
  if (from == to) return 0;
  const CfgEdge& ef = cfg_->edge(from);
  const CfgEdge& et = cfg_->edge(to);
  if (ef.backward || et.backward) return kUndefined;
  return minStates_[ef.to.index()][et.from.index()];
}

}  // namespace thls
