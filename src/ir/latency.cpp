#include "ir/latency.h"

#include <algorithm>

namespace thls {

LatencyTable::LatencyTable(const Cfg& cfg) : cfg_(&cfg) {
  THLS_ASSERT(cfg.finalized(), "LatencyTable needs a finalized CFG");
  const std::size_t nv = cfg.numNodes();
  minStates_.assign(nv, std::vector<int>(nv, kUndefined));

  // DP over the reverse forward-topological order: minStates_[v][u] counts
  // state nodes on the inclusive node path v..u.
  const auto& topo = cfg.topoNodes();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t v = it->index();
    const int selfCount = cfg.isState(CfgNodeId(static_cast<std::int32_t>(v))) ? 1 : 0;
    minStates_[v][v] = selfCount;
    for (CfgEdgeId eid : cfg.node(CfgNodeId(static_cast<std::int32_t>(v))).out) {
      const CfgEdge& e = cfg.edge(eid);
      if (e.backward) continue;
      const std::size_t w = e.to.index();
      for (std::size_t u = 0; u < nv; ++u) {
        if (minStates_[w][u] == kUndefined) continue;
        minStates_[v][u] =
            std::min(minStates_[v][u], selfCount + minStates_[w][u]);
      }
    }
  }
}

int LatencyTable::latency(CfgEdgeId from, CfgEdgeId to) const {
  if (from == to) return 0;
  const CfgEdge& ef = cfg_->edge(from);
  const CfgEdge& et = cfg_->edge(to);
  if (ef.backward || et.backward) return kUndefined;
  return minStates_[ef.to.index()][et.from.index()];
}

}  // namespace thls
