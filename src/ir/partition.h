// DFG component partition (the component-graph pipeline's foundation).
//
// A Behavior's DFG frequently decomposes into weakly-connected components:
// independent kernels sharing one controller (dual IDCT), unrolled disjoint
// lanes, or disconnected random graphs.  Components never interact through
// data dependences or timing arcs, so each can be scheduled on its own --
// the component pipeline (FlowOptions::componentPipeline) runs them as
// concurrent tasks and merges the per-component results deterministically
// (sched/component_schedule.h).
//
// The partition is computed over the *full* dependence relation (forward,
// loop-carried, and free-op edges alike): two kernels sharing even a single
// constant or input value fall into one component.  That is deliberately
// conservative -- it keeps the invariant that no DFG edge crosses a
// component boundary, so a component view needs no value duplication and
// per-component analyses see exactly the edges the monolithic ones do.
//
// Invariants (tests/partition_test.cpp):
//  * every op belongs to exactly one component;
//  * no dependence connects ops of different components;
//  * the component order is stable: components are sorted by their smallest
//    original op index, ops within a component stay in ascending original
//    index order, and recomputation reproduces the partition bit-for-bit.
//
// Like every CFG-derived structure, a partition is only valid for the graphs
// it was computed from: validFor() checks `Cfg::structureVersion()` plus the
// DFG's op/dependence counts (the DFG has no version counter; flows never
// grow the DFG mid-run, so the counts suffice as the invalidation key).
#pragma once

#include "ir/builder.h"

namespace thls {

/// One weakly-connected component: member ops ascending by original index,
/// plus the sorted unique CFG edges those ops are born on (the component's
/// anchor footprint; spans may move ops off their birth edges, but never
/// across a dependence into another component).
struct DfgComponent {
  std::vector<OpId> ops;
  std::vector<CfgEdgeId> birthEdges;
  /// Hardware (non-free) ops in the component; components without any are
  /// pass-through wiring and never warrant a scheduling task.
  int schedulableOps = 0;
};

class DfgPartition {
 public:
  /// Deterministic partition of `bhv.dfg` into weakly-connected components.
  static DfgPartition compute(const Behavior& bhv);

  std::size_t count() const { return comps_.size(); }
  const DfgComponent& component(std::size_t c) const { return comps_[c]; }

  /// Components containing at least one schedulable op.
  std::size_t schedulableComponents() const { return schedulable_; }

  /// Component index of an op (every op has exactly one).
  std::size_t componentOf(OpId op) const { return opComp_[op.index()]; }

  /// The op's index inside its component's view DFG (ops are emitted into
  /// the view in ascending original order, so this is its rank within
  /// component(componentOf(op)).ops).
  OpId viewIndexOf(OpId op) const { return opView_[op.index()]; }

  /// True while the partition still describes `bhv` (structureVersion and
  /// DFG size key, mirroring the other derived caches).
  bool validFor(const Behavior& bhv) const {
    return cfgVersion_ == bhv.cfg.structureVersion() &&
           numOps_ == bhv.dfg.numOps() && numDeps_ == bhv.dfg.numDeps();
  }

 private:
  std::vector<DfgComponent> comps_;
  std::vector<std::size_t> opComp_;
  std::vector<OpId> opView_;
  std::size_t schedulable_ = 0;
  std::uint64_t cfgVersion_ = 0;
  std::size_t numOps_ = 0;
  std::size_t numDeps_ = 0;
};

/// A standalone single-component Behavior: the original CFG (copied -- edge
/// and state ids are identical) plus the component's sub-DFG.  `toOrig`
/// maps view op index -> original OpId; the inverse is
/// DfgPartition::viewIndexOf.  Scheduling a view with
/// `allowAddState = false` never mutates its CFG, so view results map back
/// onto the original behavior edge-for-edge.
struct ComponentView {
  Behavior behavior;
  std::vector<OpId> toOrig;
};

ComponentView makeComponentView(const Behavior& bhv, const DfgPartition& part,
                                std::size_t comp);

}  // namespace thls
