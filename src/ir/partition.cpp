#include "ir/partition.h"

#include <algorithm>
#include <numeric>

namespace thls {

namespace {

std::size_t findRoot(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

void unite(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  a = findRoot(parent, a);
  b = findRoot(parent, b);
  if (a == b) return;
  // Union by smaller index so the root is always the component's smallest
  // op -- the component order below falls out of a single forward scan.
  if (b < a) std::swap(a, b);
  parent[b] = a;
}

}  // namespace

DfgPartition DfgPartition::compute(const Behavior& bhv) {
  const Dfg& dfg = bhv.dfg;
  const std::size_t n = dfg.numOps();

  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  for (const DataDependence& d : dfg.dependences()) {
    unite(parent, d.from.index(), d.to.index());
  }

  DfgPartition part;
  part.cfgVersion_ = bhv.cfg.structureVersion();
  part.numOps_ = n;
  part.numDeps_ = dfg.numDeps();
  part.opComp_.resize(n);
  part.opView_.resize(n);

  // Roots are the smallest op index of their component, so scanning ops in
  // ascending order discovers components already in stable order.
  std::vector<std::size_t> rootComp(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t root = findRoot(parent, i);
    if (rootComp[root] == n) {
      rootComp[root] = part.comps_.size();
      part.comps_.emplace_back();
    }
    DfgComponent& comp = part.comps_[rootComp[root]];
    OpId op(static_cast<std::int32_t>(i));
    part.opComp_[i] = rootComp[root];
    part.opView_[i] = OpId(static_cast<std::int32_t>(comp.ops.size()));
    comp.ops.push_back(op);
    comp.birthEdges.push_back(dfg.op(op).birth);
    if (!isFreeKind(dfg.op(op).kind)) ++comp.schedulableOps;
  }
  for (DfgComponent& comp : part.comps_) {
    std::sort(comp.birthEdges.begin(), comp.birthEdges.end(),
              [](CfgEdgeId a, CfgEdgeId b) { return a.index() < b.index(); });
    comp.birthEdges.erase(
        std::unique(comp.birthEdges.begin(), comp.birthEdges.end()),
        comp.birthEdges.end());
    if (comp.schedulableOps > 0) ++part.schedulable_;
  }
  return part;
}

ComponentView makeComponentView(const Behavior& bhv, const DfgPartition& part,
                                std::size_t comp) {
  THLS_REQUIRE(part.validFor(bhv), "partition is stale for this behavior");
  THLS_REQUIRE(comp < part.count(), "component index out of range");
  const DfgComponent& c = part.component(comp);

  ComponentView view;
  view.behavior.name = strCat(bhv.name, ".c", comp);
  view.behavior.cfg = bhv.cfg;  // structural copy: edge/state ids identical
  view.toOrig = c.ops;

  Dfg& sub = view.behavior.dfg;
  for (OpId orig : c.ops) {
    const Operation& o = bhv.dfg.op(orig);
    OpId v = o.kind == OpKind::kConst
                 ? sub.addConst(o.constValue, o.width, o.birth, o.name)
                 : sub.addOp(o.kind, o.width, o.birth, o.name);
    // addOp derives `fixed` from the kind and addDependence fills the
    // operand arrays; the remaining annotations are copied verbatim.
    Operation& vo = sub.op(v);
    vo.fixed = o.fixed;
    vo.joinPhi = o.joinPhi;
  }
  // Dependences in original order (the view's per-op input/user lists keep
  // the relative order a builder emitting only this component would have
  // produced).  Every endpoint is in the component by construction.
  for (const DataDependence& d : bhv.dfg.dependences()) {
    if (part.componentOf(d.from) != comp) continue;
    THLS_ASSERT(part.componentOf(d.to) == comp,
                "dependence crosses a component boundary");
    sub.addDependence(part.viewIndexOf(d.from), part.viewIndexOf(d.to),
                      d.toPort, d.loopCarried);
  }
  sub.validate(view.behavior.cfg);
  return view;
}

}  // namespace thls
